//! Schedule-IR contract tests over the whole registry.
//!
//! Every generalized collective lowers to a per-rank [`Schedule`] before it
//! touches a transport. These tests pin the three properties that make the
//! IR trustworthy:
//!
//! 1. **Static safety** — the verifier proves every candidate plan is
//!    deadlock-free, tag-hygienic, and covers every output byte, for every
//!    (collective, algorithm, p, k) the registry offers, without running
//!    anything.
//! 2. **Dynamic fidelity** — executing the same plans through the generic
//!    engine on the threaded runtime reproduces the sequential reference
//!    byte for byte.
//! 3. **Analytical utility** — the verifier's α/β/γ term counts price into
//!    a finite positive prediction, and direct IR costing agrees with
//!    simulating a recorded live run.

use exacoll::collectives::reference::expected_outputs;
use exacoll::collectives::registry::{candidates, lower, unique_candidates};
use exacoll::collectives::schedule::engine::execute_schedule;
use exacoll::collectives::schedule::verify::verify;
use exacoll::collectives::schedule::Schedule;
use exacoll::collectives::{CollArgs, CollectiveOp};
use exacoll::comm::{run_ranks, Comm};
use exacoll::models::{predict_from_stats, NetParams};
use exacoll::obs::payload;

/// Per-rank input length for one grid case.
fn input_len(op: CollectiveOp, p: usize, size: usize) -> usize {
    match op {
        CollectiveOp::Alltoall => size * p,
        CollectiveOp::Barrier => 0,
        _ => size,
    }
}

/// Lower every rank's plan for one case.
fn lower_all(args: &CollArgs, p: usize, n: usize) -> Vec<Schedule> {
    (0..p).map(|r| lower(args, p, r, n)).collect()
}

#[test]
fn every_registry_candidate_verifies_statically() {
    let net = NetParams::frontier_like();
    let mut cases = 0;
    for p in [4usize, 6, 8, 9] {
        for op in CollectiveOp::ALL {
            for alg in candidates(op, p, 4) {
                let n = input_len(op, p, 24);
                let plans = lower_all(&CollArgs::new(op, alg), p, n);
                let stats = verify(&plans)
                    .unwrap_or_else(|e| panic!("{op} / {alg} p={p} fails verification: {e}"));
                // Any plan that moves data must cost something.
                if p > 1 && op != CollectiveOp::Barrier {
                    assert!(
                        stats.beta_bytes > 0,
                        "{op} / {alg} p={p}: no bytes on the critical rank"
                    );
                }
                let priced = predict_from_stats(&net, &stats);
                assert!(
                    priced.is_finite() && priced >= 0.0,
                    "{op} / {alg} p={p}: bad prediction {priced}"
                );
                cases += 1;
            }
        }
    }
    assert!(cases > 200, "sweep should be dense, got {cases} cases");
}

#[test]
fn engine_reproduces_the_sequential_reference_on_threads() {
    for p in [4usize, 6, 8, 9] {
        for op in CollectiveOp::ALL {
            // The deduplicated set keeps one representative per distinct
            // plan, which is exactly the set of distinct executions.
            for alg in unique_candidates(op, p, 4) {
                let n = input_len(op, p, 16);
                let args = CollArgs::new(op, alg);
                let inputs: Vec<Vec<u8>> = (0..p).map(|r| payload(r, n)).collect();
                let expect = expected_outputs(op, args.root, args.dtype, args.rop, &inputs)
                    .expect("reference computes");
                let plans = lower_all(&args, p, n);
                let got = run_ranks(p, |c| {
                    execute_schedule(c, &plans[c.rank()], &inputs[c.rank()])
                });
                for r in 0..p {
                    assert_eq!(got[r], expect[r], "{op} / {alg} p={p} rank={r}");
                }
            }
        }
    }
}

#[test]
fn unique_candidates_execute_everything_candidates_do() {
    // Dedup must only drop aliases: for each dropped configuration there is
    // a kept one whose lowered plans are identical, so coverage is intact.
    for p in [4usize, 6, 8, 9] {
        for op in CollectiveOp::ALL {
            let all = candidates(op, p, 4);
            let kept = unique_candidates(op, p, 4);
            assert!(!kept.is_empty(), "{op} p={p}: empty candidate set");
            for alg in &all {
                let n = input_len(op, p, 16);
                let dropped_plans = lower_all(&CollArgs::new(op, *alg), p, n);
                let covered = kept.iter().any(|k| {
                    *k == *alg || lower_all(&CollArgs::new(op, *k), p, n) == dropped_plans
                });
                assert!(covered, "{op} / {alg} p={p}: dropped without an alias");
            }
        }
    }
}

#[test]
fn direct_ir_costing_agrees_with_live_trace_simulation() {
    use exacoll::collectives::{execute, Algorithm};
    use exacoll::comm::record_traces;
    use exacoll::sim::{cost, simulate, Machine};

    let p = 8;
    let machine = Machine::frontier(4, 2);
    for (op, alg) in [
        (CollectiveOp::Allreduce, Algorithm::Ring),
        (
            CollectiveOp::Allreduce,
            Algorithm::RecursiveMultiplying { k: 2 },
        ),
        (CollectiveOp::Bcast, Algorithm::KnomialTree { k: 4 }),
        (CollectiveOp::Alltoall, Algorithm::Pairwise),
    ] {
        let n = input_len(op, p, 32);
        let args = CollArgs::new(op, alg);
        let plans = lower_all(&args, p, n);
        let direct = cost(&machine, &plans).expect("schedule costs");
        let traces = record_traces(p, |c| {
            let input = payload(c.rank(), n);
            execute(c, &args, &input).map(|_| ())
        });
        let live = simulate(&machine, &traces).expect("trace replays");
        assert_eq!(direct.makespan, live.makespan, "{op} / {alg}");
    }
}
