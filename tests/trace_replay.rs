//! Structural integration tests: every algorithm's recorded schedule is
//! conservative (every send matched by a receive) and replays to completion
//! on the simulator — across machines, PPNs, and port assignments.

use exacoll::collectives::{registry::candidates, Algorithm, CollectiveOp};
use exacoll::comm::trace::check_conservation;
use exacoll::osu::measure::{measure, record_collective};
use exacoll::sim::{simulate, Machine};

#[test]
fn all_schedules_conserve_messages() {
    for p in [2usize, 6, 8, 13] {
        for op in CollectiveOp::ALL {
            for alg in candidates(op, p, 4) {
                let traces = record_collective(p, op, alg, 256, 0);
                check_conservation(&traces).unwrap_or_else(|e| panic!("{op} {alg} p={p}: {e}"));
            }
        }
    }
}

#[test]
fn all_schedules_replay_without_deadlock_all_machines() {
    let machines = [
        Machine::frontier(8, 1),
        Machine::frontier(2, 4),
        Machine::frontier(1, 8),
        Machine::polaris(4, 2),
        Machine::testbed(8, 1, 2),
    ];
    for m in &machines {
        let p = m.ranks();
        for op in CollectiveOp::ALL {
            for alg in candidates(op, p, 4) {
                let out = measure(m, op, alg, 2048, 0);
                let out = out.unwrap_or_else(|e| panic!("{} {op} {alg}: {e}", m.name));
                assert!(out.makespan.as_nanos() > 0.0);
                assert!(out.finish.iter().all(|t| t.is_valid()));
            }
        }
    }
}

#[test]
fn traffic_statistics_match_schedule_totals() {
    let m = Machine::frontier(4, 2); // p = 8
    let n = 4096usize;
    let traces = record_collective(8, CollectiveOp::Allgather, Algorithm::Ring, n, 0);
    let total_sent: u64 = traces.iter().map(|t| t.bytes_sent()).sum();
    let out = simulate(&m, &traces).unwrap();
    assert_eq!(out.stats.total_bytes(), total_sent);
    // Ring allgather moves (p-1) blocks of n bytes per rank.
    assert_eq!(total_sent, (8 * 7 * n) as u64);
    // With 2 ranks per node, 2 of every 8 ring hops stay intranode...
    // ranks 0-1, 2-3, ... are co-located; hops 0->1, 2->3, 4->5, 6->7 are
    // intranode: exactly half the hops.
    assert_eq!(out.stats.intra_bytes, out.stats.inter_bytes);
}

#[test]
fn kring_inter_group_traffic_matches_eq13() {
    // Eq. (13): with groups aligned to nodes, internode bytes per group are
    // 2n(p-k)/p; the simulator's counters must agree exactly.
    let nodes = 4;
    let ppn = 4;
    let m = Machine::frontier(nodes, ppn);
    let p = m.ranks();
    let k = ppn;
    let block = 1024usize;
    let n = block * p; // total allgather payload
    let traces = record_collective(p, CollectiveOp::Allgather, Algorithm::KRing { k }, block, 0);
    let out = simulate(&m, &traces).unwrap();
    let per_group_model = exacoll::models::kring::inter_group_data(n, p, k);
    let groups = (p / k) as f64;
    // Every inter-group byte is sent once and received once; the counter
    // counts each message once, so total internode bytes = groups * D / 2.
    assert_eq!(
        out.stats.inter_bytes as f64,
        groups * per_group_model / 2.0,
        "internode traffic disagrees with Eq. 13"
    );
}

#[test]
fn one_ppn_has_no_intranode_traffic() {
    let m = Machine::frontier(8, 1);
    let out = measure(
        &m,
        CollectiveOp::Allreduce,
        Algorithm::RecursiveMultiplying { k: 4 },
        4096,
        0,
    )
    .unwrap();
    assert_eq!(out.stats.intra_messages, 0);
    assert!(out.stats.inter_messages > 0);
}

#[test]
fn single_node_has_no_internode_traffic() {
    let m = Machine::frontier(1, 8);
    let out = measure(
        &m,
        CollectiveOp::Allgather,
        Algorithm::KRing { k: 8 },
        4096,
        0,
    )
    .unwrap();
    assert_eq!(out.stats.inter_messages, 0);
    assert!(out.stats.intra_messages > 0);
}

#[test]
fn compute_bytes_accounted_for_reductions_only() {
    let m = Machine::frontier(8, 1);
    let red = measure(
        &m,
        CollectiveOp::Reduce,
        Algorithm::KnomialTree { k: 2 },
        1024,
        0,
    )
    .unwrap();
    assert!(red.stats.compute_bytes > 0);
    let bc = measure(
        &m,
        CollectiveOp::Bcast,
        Algorithm::KnomialTree { k: 2 },
        1024,
        0,
    )
    .unwrap();
    assert_eq!(bc.stats.compute_bytes, 0);
}
