//! Cross-backend conformance: the TCP socket runtime must be
//! indistinguishable from the threaded runtime to every collective.
//!
//! The grid runs every (collective × candidate algorithm × radix) case on
//! both backends with identical deterministic inputs and asserts
//! byte-identical agreement with the sequential reference — so a matching
//! bug, framing bug, or ordering bug in the wire layer shows up as a
//! payload diff, not a flaky hang. The pointwise tests then pin the
//! semantics the grid relies on: non-overtaking same-tag delivery,
//! out-of-order `waitall` completion in posting order, fault-wrapper and
//! instrumentation transparency over real sockets.

use exacoll::collectives::reference::expected_outputs;
use exacoll::collectives::{execute, registry::candidates, CollArgs, CollectiveOp};
use exacoll::comm::{run_ranks, Comm, CommError, CommResult, FaultComm, FaultPlan, Req};
use exacoll::net::{run_socket_ranks, try_run_socket_ranks_with};
use exacoll::obs::{payload, TimedComm};
use std::time::Duration;

/// Inputs for one grid case: the shared deterministic pattern every process
/// of the TCP backend can reconstruct locally.
fn grid_inputs(op: CollectiveOp, p: usize, size: usize) -> Vec<Vec<u8>> {
    let len = match op {
        CollectiveOp::Alltoall => size * p,
        CollectiveOp::Barrier => 0,
        _ => size,
    };
    (0..p).map(|r| payload(r, len)).collect()
}

fn check_case(op: CollectiveOp, alg: exacoll::collectives::Algorithm, p: usize, size: usize) {
    let inputs = grid_inputs(op, p, size);
    let args = CollArgs::new(op, alg);
    let expect =
        expected_outputs(op, args.root, args.dtype, args.rop, &inputs).expect("reference computes");

    let thread_out = run_ranks(p, |c| execute(c, &args, &inputs[c.rank()]));
    let socket_out = run_socket_ranks(p, |c| execute(c, &args, &inputs[c.rank()]));
    for r in 0..p {
        assert_eq!(
            thread_out[r], expect[r],
            "thread mismatch: {op} {alg} p={p} rank={r}"
        );
        assert_eq!(
            socket_out[r], expect[r],
            "socket mismatch: {op} {alg} p={p} rank={r}"
        );
    }
}

#[test]
fn every_candidate_agrees_on_both_backends() {
    let mut cases = 0;
    for p in [4usize, 6] {
        for op in CollectiveOp::ALL {
            for alg in candidates(op, p, 4) {
                check_case(op, alg, p, 48);
                cases += 1;
            }
        }
    }
    assert!(cases > 60, "grid should be dense, got {cases} cases");
}

#[test]
fn pre_lowered_schedules_execute_over_real_sockets() {
    // The schedule IR is transport-agnostic: plans lowered once, ahead of
    // time, must run unmodified through the generic engine on the TCP
    // runtime and still match the sequential reference.
    use exacoll::collectives::registry::lower;
    use exacoll::collectives::schedule::engine::execute_schedule;
    use exacoll::collectives::Algorithm;

    let p = 4;
    for (op, alg) in [
        (
            CollectiveOp::Allreduce,
            Algorithm::RecursiveMultiplying { k: 2 },
        ),
        (CollectiveOp::Allgather, Algorithm::KRing { k: 2 }),
        (CollectiveOp::Bcast, Algorithm::KnomialTree { k: 3 }),
        (CollectiveOp::Alltoall, Algorithm::GeneralizedBruck { r: 2 }),
        (CollectiveOp::Barrier, Algorithm::Dissemination { k: 2 }),
    ] {
        let inputs = grid_inputs(op, p, 24);
        let args = CollArgs::new(op, alg);
        let expect = expected_outputs(op, args.root, args.dtype, args.rop, &inputs)
            .expect("reference computes");
        let n = inputs[0].len();
        let plans: Vec<_> = (0..p).map(|r| lower(&args, p, r, n)).collect();
        let out = run_socket_ranks(p, |c| {
            execute_schedule(c, &plans[c.rank()], &inputs[c.rank()])
        });
        for r in 0..p {
            assert_eq!(
                out[r], expect[r],
                "socket engine mismatch: {op} {alg} rank={r}"
            );
        }
    }
}

#[test]
fn odd_world_size_agrees_on_both_backends() {
    // Prime p exercises the non-power-of-two paths (virtual ranks, uneven
    // k-ring splits) over real sockets.
    for op in [
        CollectiveOp::Allreduce,
        CollectiveOp::Bcast,
        CollectiveOp::Allgather,
    ] {
        for alg in candidates(op, 5, 3) {
            check_case(op, alg, 5, 40);
        }
    }
}

/// The non-overtaking guarantee per (sender, receiver, tag), asserted the
/// same way on both backends: a burst of same-tag messages must arrive in
/// send order.
fn same_tag_fifo_body(c: &mut impl Comm) -> CommResult<Vec<u8>> {
    const N: u8 = 40;
    if c.rank() == 0 {
        for i in 0..N {
            c.send(1, 9, vec![i; 5])?;
        }
        Ok(vec![])
    } else {
        let mut got = Vec::new();
        for _ in 0..N {
            got.push(c.recv(0, 9, 5)?[0]);
        }
        Ok(got)
    }
}

#[test]
fn same_tag_ordering_matches_across_backends() {
    let expected: Vec<u8> = (0..40).collect();
    let t = run_ranks(2, same_tag_fifo_body);
    let s = run_socket_ranks(2, same_tag_fifo_body);
    assert_eq!(t[1], expected);
    assert_eq!(s[1], expected);
}

/// Same-(from, tag) receives completed through one `waitall` must fill
/// result slots in posting order even though completion is out of order.
fn waitall_slot_order_body(c: &mut impl Comm) -> CommResult<Vec<u8>> {
    if c.rank() == 0 {
        for i in 0..8u8 {
            c.send(1, 3, vec![i])?;
        }
        Ok(vec![])
    } else {
        let reqs: Vec<Req> = (0..8)
            .map(|_| c.irecv(0, 3, 1))
            .collect::<CommResult<_>>()?;
        let msgs = c.waitall(reqs)?;
        Ok(msgs.into_iter().map(|m| m.unwrap()[0]).collect())
    }
}

#[test]
fn waitall_slot_order_matches_across_backends() {
    let expected: Vec<u8> = (0..8).collect();
    let t = run_ranks(2, waitall_slot_order_body);
    let s = run_socket_ranks(2, waitall_slot_order_body);
    assert_eq!(t[1], expected);
    assert_eq!(s[1], expected);
}

#[test]
fn fault_delays_on_real_sockets_stay_correct() {
    // Delays reorder wall-clock arrival across peers but must not break
    // matching or results on a real transport.
    let p = 4;
    let args = CollArgs::new(
        CollectiveOp::Allreduce,
        exacoll::collectives::Algorithm::RecursiveMultiplying { k: 2 },
    );
    let inputs = grid_inputs(CollectiveOp::Allreduce, p, 64);
    let expect =
        expected_outputs(args.op, args.root, args.dtype, args.rop, &inputs).expect("reference");
    let out = run_socket_ranks(p, |c| {
        let rank = c.rank();
        let plan = FaultPlan::none(7 + rank as u64).delays(0.5, Duration::from_millis(3));
        let mut fc = FaultComm::new(&mut *c, plan);
        execute(&mut fc, &args, &inputs[rank])
    });
    for r in 0..p {
        assert_eq!(out[r], expect[r], "delayed socket run diverged at rank {r}");
    }
}

#[test]
fn fault_drops_on_real_sockets_fail_cleanly() {
    // Dropping every send must surface as a deadline Timeout (or the
    // consequent PeerGone/RankPanicked cascade) on every affected rank —
    // never a hang, never a wrong result.
    let p = 2;
    let args = CollArgs::new(
        CollectiveOp::Allreduce,
        exacoll::collectives::Algorithm::Ring,
    );
    let inputs = grid_inputs(CollectiveOp::Allreduce, p, 32);
    let results = try_run_socket_ranks_with(p, Duration::from_millis(300), |c| {
        let plan = FaultPlan::none(11).drops(1.0);
        let mut fc = FaultComm::new(&mut *c, plan);
        let input = inputs[fc.rank()].clone();
        execute(&mut fc, &args, &input)
    });
    assert!(
        results.iter().any(|r| r.is_err()),
        "dropping all messages cannot succeed"
    );
    for (r, res) in results.iter().enumerate() {
        if let Err(e) = res {
            assert!(
                matches!(
                    e,
                    CommError::Timeout { .. }
                        | CommError::PeerGone { .. }
                        | CommError::Aborted { .. }
                ),
                "rank {r}: expected a clean hang-free error, got {e}"
            );
        }
    }
}

#[test]
fn timed_comm_is_transparent_over_sockets() {
    // TimedComm must not perturb results, and must record real socket time
    // for every rank.
    let p = 4;
    let args = CollArgs::new(
        CollectiveOp::Allgather,
        exacoll::collectives::Algorithm::Bruck,
    );
    let inputs = grid_inputs(CollectiveOp::Allgather, p, 32);
    let expect =
        expected_outputs(args.op, args.root, args.dtype, args.rop, &inputs).expect("reference");
    let out = run_socket_ranks(p, |c| {
        let rank = c.rank();
        let mut tc = TimedComm::new(&mut *c);
        let res = execute(&mut tc, &args, &inputs[rank])?;
        let (_, timeline) = tc.into_parts();
        assert!(
            !timeline.events.is_empty(),
            "rank {rank} recorded no events"
        );
        assert!(timeline.finish_ns() > 0.0);
        Ok(res)
    });
    for r in 0..p {
        assert_eq!(
            out[r], expect[r],
            "instrumented socket run diverged at rank {r}"
        );
    }
}
