//! Integration tests for the deterministic record/replay engine: recorded
//! runs round-trip through serialization and replay with zero divergence,
//! mutations are pinpointed at the exact (rank, step), integrity-broken
//! artifacts are rejected (never reported as "no divergence"), and divergence
//! reports are byte-identical across replays.

use exacoll::chaos::{run_case_recorded, FaultClass};
use exacoll::collectives::registry::candidates;
use exacoll::collectives::{Algorithm, CollArgs, CollectiveOp};
use exacoll::comm::RecordedEvent;
use exacoll::replay::{record_thread_run, replay, Artifact, ReplayError};
use proptest::prelude::*;

/// Strategy: a supported (op, alg, p) triple over the acceptance grid —
/// p ∈ {4, 6, 8}, radix k ≤ 4.
fn arb_config() -> impl Strategy<Value = (CollectiveOp, Algorithm, usize)> {
    (0usize..3, 0usize..CollectiveOp::ALL.len()).prop_flat_map(|(p_idx, op_idx)| {
        let p = [4, 6, 8][p_idx];
        let op = CollectiveOp::ALL[op_idx];
        let cands = candidates(op, p, 4);
        (0..cands.len()).prop_map(move |i| (op, cands[i], p))
    })
}

/// Per-rank payload length valid for `op` on `p` ranks.
fn input_len(op: CollectiveOp, p: usize, n: usize) -> usize {
    match op {
        CollectiveOp::Alltoall => n.div_ceil(p) * p,
        CollectiveOp::Barrier => 0,
        _ => n,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Record → serialize → parse → replay is lossless: every recorded run
    /// replays with zero divergence, whatever the configuration.
    #[test]
    fn recorded_runs_replay_clean_after_round_trip(
        (op, alg, p) in arb_config(),
        n in 8usize..48,
        seed in 0u64..1000,
    ) {
        let coll = CollArgs::new(op, alg);
        let artifact = record_thread_run(&coll, p, input_len(op, p, n), seed);
        let parsed = Artifact::from_json(&artifact.to_json())
            .expect("serialized artifact parses back");
        let report = replay(&parsed).expect("artifact replays");
        prop_assert!(
            report.is_clean(),
            "{op}/{alg} p={p} n={n} seed={seed} diverged:\n{}",
            report.render()
        );
        prop_assert!(report.events_checked > 0, "a run records at least one event");
    }

    /// Flipping one recorded digest makes the replayer name the exact
    /// (rank, step) — never a clean verdict, never a different location.
    #[test]
    fn flipped_digest_is_pinpointed(
        (op, alg, p) in arb_config(),
        seed in 0u64..1000,
    ) {
        let coll = CollArgs::new(op, alg);
        let mut artifact = record_thread_run(&coll, p, input_len(op, p, 24), seed);
        // Find the first completed receive anywhere and corrupt its digest.
        let victim = artifact.ranks.iter().enumerate().find_map(|(r, log)| {
            log.events.iter().enumerate().find_map(|(s, ev)| match ev {
                RecordedEvent::Recv { digest: Some(_), .. } => Some((r, s)),
                _ => None,
            })
        });
        // Every multi-rank collective delivers at least one message, but be
        // defensive: skip the sample if nothing completed.
        let (vr, vs) = match victim {
            Some(v) => v,
            None => continue,
        };
        if let RecordedEvent::Recv { digest: Some(d), .. } =
            &mut artifact.ranks[vr].events[vs]
        {
            *d ^= 0xff;
        }
        let parsed = Artifact::from_json(&artifact.to_json()).expect("parses");
        let report = replay(&parsed).expect("replays");
        prop_assert!(!report.is_clean(), "corrupted artifact must diverge");
        let h = report.headline().expect("headline");
        prop_assert_eq!(h.rank, vr, "wrong rank blamed: {}", report.render());
        prop_assert_eq!(h.step, vs, "wrong step blamed: {}", report.render());
    }
}

#[test]
fn dropping_an_event_without_resequencing_is_a_seq_gap() {
    let coll = CollArgs::new(
        CollectiveOp::Allreduce,
        Algorithm::RecursiveMultiplying { k: 2 },
    );
    let artifact = record_thread_run(&coll, 4, 32, 7);
    assert!(
        artifact.ranks[0].events.len() >= 3,
        "need a middle event to drop"
    );
    // Renumber rank 0's second event: the explicit per-event seq makes a
    // missing event a hard integrity error, not a silent shift.
    let text = artifact
        .to_json()
        .replacen("\"seq\": 1", "\"seq\": 9999", 1);
    match Artifact::from_json(&text) {
        Err(ReplayError::SeqGap {
            rank,
            expected,
            found,
        }) => {
            assert_eq!((rank, expected, found), (0, 1, 9999));
        }
        other => panic!("expected SeqGap, got {other:?}"),
    }
}

#[test]
fn truncated_event_list_is_rejected_not_clean() {
    let coll = CollArgs::new(CollectiveOp::Allgather, Algorithm::Ring);
    let artifact = record_thread_run(&coll, 4, 16, 3);
    let declared = artifact.ranks[0].events.len();
    let text = artifact.to_json().replacen(
        &format!("\"declared_events\": {declared}"),
        &format!("\"declared_events\": {}", declared + 2),
        1,
    );
    match Artifact::from_json(&text) {
        Err(ReplayError::Truncated {
            rank,
            declared: d,
            found,
        }) => {
            assert_eq!(rank, 0);
            assert_eq!(d, declared + 2);
            assert_eq!(found, declared);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn corrupt_json_is_rejected_with_a_parse_error() {
    assert!(matches!(
        Artifact::from_json("{\"format\": \"exacoll-replay/v1\", nope"),
        Err(ReplayError::Parse(_))
    ));
    assert!(matches!(
        Artifact::from_json("{\"format\": \"somebody-elses/v9\"}"),
        Err(ReplayError::Format { .. })
    ));
}

/// The ISSUE acceptance check: a chaos-injected failure replays
/// deterministically — running the replayer twice over the same artifact
/// yields byte-identical divergence reports naming the first divergent
/// (rank, step) with expected-vs-observed digests.
#[test]
fn chaos_corruption_replays_to_byte_identical_reports() {
    let (_, artifact) = run_case_recorded(
        CollectiveOp::Allreduce,
        Algorithm::RecursiveMultiplying { k: 2 },
        6,
        FaultClass::Corrupt,
        42,
        48,
    );
    let text = artifact.to_json();
    let a = replay(&Artifact::from_json(&text).unwrap()).unwrap();
    let b = replay(&Artifact::from_json(&text).unwrap()).unwrap();
    assert!(!a.is_clean(), "corruption campaign must diverge");
    assert_eq!(a.render(), b.render(), "replay is deterministic");
    let h = a.headline().unwrap();
    assert!(
        a.render().contains("expected:") && a.render().contains("observed:"),
        "report shows expected vs observed: {}",
        a.render()
    );
    assert!(
        h.explanation.contains("corruption"),
        "explanation names the cause: {}",
        h.explanation
    );
}

/// A killed rank's log truncates at the kill point and the replayer blames
/// that rank at the first missing step.
#[test]
fn chaos_kill_replays_to_the_victims_first_missing_step() {
    let (_, artifact) = run_case_recorded(
        CollectiveOp::Allreduce,
        Algorithm::Ring,
        6,
        FaultClass::Kill,
        42,
        48,
    );
    let report = replay(&Artifact::from_json(&artifact.to_json()).unwrap()).unwrap();
    assert!(!report.is_clean());
    let victim = 1; // the campaign kills rank 1 % p at its first op
    let d = report
        .divergences
        .iter()
        .find(|d| d.rank == victim)
        .expect("victim rank diverges");
    assert_eq!(
        d.step,
        artifact.ranks[victim].events.len(),
        "divergence sits exactly where the log stops"
    );
}
