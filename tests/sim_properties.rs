//! Property-based integration tests over the simulator and schedules.

use exacoll::collectives::{registry::candidates, Algorithm, CollectiveOp};
use exacoll::osu::latency;
use exacoll::osu::measure::record_collective;
use exacoll::sim::{simulate, Machine, NoiseModel};
use proptest::prelude::*;

/// Strategy: a supported (op, alg, p) triple on small communicators.
fn arb_config() -> impl Strategy<Value = (CollectiveOp, Algorithm, usize)> {
    (2usize..14, 0usize..CollectiveOp::ALL.len()).prop_flat_map(|(p, op_idx)| {
        let op = CollectiveOp::ALL[op_idx];
        let cands = candidates(op, p, 5);
        (0..cands.len()).prop_map(move |i| (op, cands[i], p))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Simulated latency is monotone (non-decreasing) in message size.
    #[test]
    fn latency_monotone_in_size((op, alg, p) in arb_config()) {
        let m = Machine::frontier(p, 1);
        let t1 = latency(&m, op, alg, 64).unwrap();
        let t2 = latency(&m, op, alg, 8192).unwrap();
        let t3 = latency(&m, op, alg, 262_144).unwrap();
        prop_assert!(t1 <= t2, "{op} {alg} p={p}: {t1} > {t2}");
        prop_assert!(t2 <= t3, "{op} {alg} p={p}: {t2} > {t3}");
    }

    /// The simulator is a pure function of (machine, trace).
    #[test]
    fn replay_is_deterministic((op, alg, p) in arb_config()) {
        let m = Machine::frontier(p, 1);
        let traces = record_collective(p, op, alg, 1024, 0);
        let a = simulate(&m, &traces).unwrap();
        let b = simulate(&m, &traces).unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.finish, b.finish);
    }

    /// Congestion noise can only slow things down, and identical seeds give
    /// identical noisy results.
    #[test]
    fn noise_monotone_and_reproducible((op, alg, p) in arb_config()) {
        let m = Machine::frontier(p, 1);
        let traces = record_collective(p, op, alg, 65_536, 0);
        let base = simulate(&m, &traces).unwrap().makespan;
        let mut n1 = NoiseModel::new(7, 0.15, 0.15);
        let mut n2 = NoiseModel::new(7, 0.15, 0.15);
        let t1 = exacoll::sim::replay::simulate_noisy(&m, &traces, &mut n1).unwrap().makespan;
        let t2 = exacoll::sim::replay::simulate_noisy(&m, &traces, &mut n2).unwrap().makespan;
        prop_assert!(t1 >= base);
        prop_assert_eq!(t1, t2);
    }

    /// More NIC ports never hurt.
    #[test]
    fn more_ports_never_slower((op, alg, p) in arb_config(), n in 64usize..65_536) {
        let mut narrow = Machine::frontier(p, 1);
        narrow.ports_per_node = 1;
        let wide = Machine::frontier(p, 1); // 4 ports
        let t_narrow = latency(&narrow, op, alg, n).unwrap();
        let t_wide = latency(&wide, op, alg, n).unwrap();
        prop_assert!(t_wide <= t_narrow, "{op} {alg} p={p} n={n}: wide {t_wide} > narrow {t_narrow}");
    }

    /// A faster intranode fabric never hurts on multi-PPN machines.
    #[test]
    fn faster_fabric_never_slower(ppn_pow in 1u32..4, n in 512usize..32_768) {
        let ppn = 1usize << ppn_pow;
        let nodes = 4;
        let fast = Machine::frontier(nodes, ppn);
        let mut slow = fast.clone();
        slow.intra.alpha_ns *= 4.0;
        slow.intra.beta_ns_per_byte *= 4.0;
        let p = fast.ranks();
        for alg in [Algorithm::Ring, Algorithm::KRing { k: ppn }] {
            if alg.supports(CollectiveOp::Allgather, p).is_err() { continue; }
            let t_fast = latency(&fast, CollectiveOp::Allgather, alg, n).unwrap();
            let t_slow = latency(&slow, CollectiveOp::Allgather, alg, n).unwrap();
            prop_assert!(t_fast <= t_slow, "{alg}: {t_fast} > {t_slow}");
        }
    }

    /// The k-ring with k = 1 produces exactly the ring's timing.
    #[test]
    fn kring1_equals_ring(p in 2usize..12, n in 64usize..16_384) {
        let m = Machine::frontier(p, 1);
        for op in [CollectiveOp::Allgather, CollectiveOp::Bcast, CollectiveOp::Allreduce] {
            let t_ring = latency(&m, op, Algorithm::Ring, n).unwrap();
            let t_k1 = latency(&m, op, Algorithm::KRing { k: 1 }, n).unwrap();
            prop_assert!((t_ring.as_nanos() - t_k1.as_nanos()).abs() < 1e-6,
                "{op} p={p} n={n}: ring {t_ring} vs kring(1) {t_k1}");
        }
    }

    /// Message-buffer depth: unlimited buffering is never slower than a
    /// depth-1 buffer (Fig. 2's overlap argument).
    #[test]
    fn buffering_never_hurts((op, alg, p) in arb_config()) {
        let unlimited = Machine::frontier(p, 1);
        let mut depth1 = unlimited.clone();
        depth1.send_buffer_depth = 1;
        let t_unl = latency(&unlimited, op, alg, 4096).unwrap();
        let t_1 = latency(&depth1, op, alg, 4096).unwrap();
        prop_assert!(t_unl <= t_1, "{op} {alg} p={p}: {t_unl} > {t_1}");
    }
}

#[test]
fn port_cap_limits_knomial_overlap() {
    // §III-D: "it is possible that the physical number of network ports
    // caps the number of overlapping communications per endpoint, lowering
    // the optimal k." Restricting ports must hurt large radixes more than
    // binomial for bandwidth-relevant sizes.
    let p = 32;
    let mut one_port = Machine::frontier(p, 1);
    one_port.ports_per_node = 1;
    let four_ports = Machine::frontier(p, 1);
    let n = 1 << 20;
    let penalty = |m: &Machine, k: usize| {
        latency(m, CollectiveOp::Reduce, Algorithm::KnomialTree { k }, n)
            .unwrap()
            .as_nanos()
    };
    let slowdown_k2 = penalty(&one_port, 2) / penalty(&four_ports, 2);
    let slowdown_k16 = penalty(&one_port, 16) / penalty(&four_ports, 16);
    assert!(
        slowdown_k16 > slowdown_k2,
        "port cap should hurt k=16 ({slowdown_k16:.2}x) more than k=2 ({slowdown_k2:.2}x)"
    );
}
