//! Integration tests for the observability subsystem: the timing wrapper
//! must never perturb collective results, the exporters must round-trip,
//! and injected faults must be visible in the recorded timelines.

use exacoll::chaos::{rank_payload, run_case_timed};
use exacoll::collectives::{execute, registry::candidates, Algorithm, CollArgs, CollectiveOp};
use exacoll::comm::thread_rt::try_run_ranks;
use exacoll::comm::{Comm, FaultEvent, FaultPlan, ThreadComm};
use exacoll::obs::{
    chrome_trace, profile_sim, profile_thread, rank_tracks, EventKind, Histogram, Metrics,
    ProfileSpec, TimedComm,
};
use exacoll::sim::Machine;
use proptest::prelude::*;
use std::time::Duration;

fn payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((rank * 37 + i * 11) % 251) as u8)
        .collect()
}

/// Run one (op, alg) case on `p` threaded ranks, optionally timed, and
/// return every rank's output bytes.
fn run_outputs(
    op: CollectiveOp,
    alg: Algorithm,
    p: usize,
    len: usize,
    timed: bool,
) -> Vec<Vec<u8>> {
    let args = CollArgs::new(op, alg);
    let results = try_run_ranks(p, |c: &mut ThreadComm| {
        let input = payload(c.rank(), len);
        if timed {
            let mut tc = TimedComm::new(&mut *c);
            execute(&mut tc, &args, &input)
        } else {
            execute(c, &args, &input)
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(r, res)| res.unwrap_or_else(|e| panic!("{op}/{alg} rank {r} (timed={timed}): {e}")))
        .collect()
}

/// The correctness guard: wrapping every rank in `TimedComm` must leave the
/// result of every collective byte-identical, for every candidate algorithm.
#[test]
fn timed_wrapper_is_transparent_for_every_collective() {
    let p = 6;
    for op in CollectiveOp::ALL {
        // 96 B is a multiple of p, so alltoall's one-block-per-peer layout
        // holds; barrier takes no payload.
        let len = if op == CollectiveOp::Barrier { 0 } else { 96 };
        for alg in candidates(op, p, 4) {
            let bare = run_outputs(op, alg, p, len, false);
            let timed = run_outputs(op, alg, p, len, true);
            assert_eq!(bare, timed, "{op}/{alg}: TimedComm changed the result");
        }
    }
}

/// Chrome-trace export: pretty-print, re-parse, and check the track map
/// matches the recorded timelines slice-for-slice.
#[test]
fn chrome_trace_round_trips_through_json() {
    let spec = ProfileSpec {
        op: CollectiveOp::Allreduce,
        alg: Algorithm::RecursiveMultiplying { k: 4 },
        machine: Machine::testbed(16, 1, 1),
        size: 2048,
    };
    let sim = profile_sim(&spec).expect("sim profile");
    let thread = profile_thread(&spec).expect("thread profile");
    let doc = chrome_trace(&[
        ("thread", thread.timelines.as_slice()),
        ("sim", sim.timelines.as_slice()),
    ]);
    let reparsed = exacoll::json::parse(&doc.pretty()).expect("trace survives printing");
    let tracks = rank_tracks(&reparsed).expect("trace is Chrome-shaped");
    assert_eq!(tracks.len(), 32, "one track per rank per backend");
    for (run, pid) in [(&thread, 0usize), (&sim, 1usize)] {
        for tl in &run.timelines {
            let slices = tracks[&(pid, tl.rank)];
            let expected = tl
                .events
                .iter()
                .filter(|e| e.kind != EventKind::Mark)
                .count();
            assert_eq!(slices, expected, "backend {pid} rank {} slices", tl.rank);
        }
    }
}

/// Metrics snapshot: serialize, re-parse, deserialize, compare structurally.
#[test]
fn metrics_snapshot_round_trips_through_json() {
    let spec = ProfileSpec {
        op: CollectiveOp::Allgather,
        alg: Algorithm::KRing { k: 2 },
        machine: Machine::testbed(8, 2, 1),
        size: 512,
    };
    let run = profile_sim(&spec).expect("sim profile");
    let mut m = Metrics::new();
    m.incr("campaigns", 3);
    m.observe("arbitrary", 0.25);
    m.observe("arbitrary", 9e9);
    m.record_timelines("allgather/kring:2/512/sim", &run.timelines);
    let text = m.to_json().pretty();
    let back = Metrics::from_json(&exacoll::json::parse(&text).expect("valid JSON"))
        .expect("snapshot deserializes");
    assert_eq!(m, back);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram invariant: bucket counts always sum to the number of
    /// observations, whatever the values (including sub-1.0 and huge ones).
    #[test]
    fn histogram_buckets_sum_to_observation_count(
        vals in proptest::collection::vec(0.0f64..1e15, 0..256)
    ) {
        let mut h = Histogram::default();
        for &v in &vals {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), vals.len() as u64);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), vals.len() as u64);
    }
}

/// A FaultPlan delay injected under `FaultComm` must surface in the outer
/// `TimedComm` timeline as an inflated send span at the faulted op index.
#[test]
fn injected_delay_inflates_the_matching_send_span() {
    let plan = FaultPlan::none(7).delays(1.0, Duration::from_micros(800));
    let p = 4;
    let cases = run_case_timed(
        CollectiveOp::Allreduce,
        Algorithm::Ring,
        p,
        plan,
        Duration::from_secs(30),
        64,
    );
    assert_eq!(cases.len(), p);
    let mut checked = 0;
    for (rank, case) in cases.iter().enumerate() {
        let out = case
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("delay-only plan must still complete (rank {rank}): {e}"));
        assert_eq!(out.len(), rank_payload(plan.seed, rank, 64).len());
        // FaultComm's op clock ticks once per isend/irecv, in call order —
        // the same order TimedComm records Send/Recv events.
        let p2p: Vec<_> = case
            .timeline
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send | EventKind::Recv))
            .collect();
        for f in &case.faults {
            if let FaultEvent::Delay { op, to, delay_us } = f {
                let e = p2p
                    .get(*op)
                    .unwrap_or_else(|| panic!("rank {rank}: no p2p event at op {op}"));
                assert_eq!(e.kind, EventKind::Send, "rank {rank} op {op}");
                assert_eq!(e.peer, Some(*to), "rank {rank} op {op}");
                if *delay_us > 0 {
                    let floor = *delay_us as f64 * 1000.0;
                    assert!(
                        e.span_ns() >= floor,
                        "rank {rank} op {op}: send span {:.0} ns < injected {floor} ns",
                        e.span_ns()
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(
        checked > 0,
        "plan with delay_prob=1.0 injected no nonzero delay"
    );
}
