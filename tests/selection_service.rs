//! End-to-end acceptance for the online selection service: cost-model
//! priors seed the table, contradicting measurements flip the winner, the
//! flipped table survives persist/reload byte-identically, the
//! prior-vs-learned diff renders deterministically, and readers stay
//! lock-free while the writer republishes.

use exacoll::collectives::registry::default_algorithm;
use exacoll::collectives::{Algorithm, CollectiveOp};
use exacoll::select::{bucket_of_bytes, diff, Policy, SelectionService};
use exacoll::sim::Machine;

const OP: CollectiveOp = CollectiveOp::Allreduce;
const P: usize = 8;
const BYTES: usize = 4096;

fn seeded() -> SelectionService {
    let m = Machine::frontier(P, 1);
    let svc = SelectionService::new(Policy::default());
    svc.seed_point(&m, OP, BYTES, 8).expect("priors price");
    svc.publish();
    svc
}

/// A candidate in the bucket other than `not`.
fn rival_of(svc: &SelectionService, not: Algorithm) -> Algorithm {
    let mut rival = None;
    svc.for_each_bucket(|op, p, bucket, cells| {
        if op == OP && p == P && bucket == bucket_of_bytes(BYTES) {
            rival = cells.iter().map(|c| c.alg).find(|&a| a != not);
        }
    });
    rival.expect("allreduce has several candidates at p=8")
}

#[test]
fn contradicting_timings_flip_the_selected_algorithm() {
    let svc = seeded();
    let prior_pick = svc.lookup(OP, P, BYTES).expect("prior winner published");
    let rival = rival_of(&svc, prior_pick);

    // Inject observations that contradict the model: the rival measures
    // far faster than anything the model predicted, the model's pick far
    // slower. The winner must flip for this (op, p, bucket) only.
    for _ in 0..40 {
        svc.observe(OP, P, BYTES, rival, 50.0);
        svc.observe(OP, P, BYTES, prior_pick, 5e9);
    }
    svc.publish();
    assert_eq!(svc.lookup(OP, P, BYTES), Some(rival), "winner did not flip");
    // A different size bucket is untouched (never seeded -> still a miss).
    assert_eq!(svc.lookup(OP, P, BYTES * 1024), None);
    // And the fallback path still answers with the MPICH-style default.
    assert_eq!(
        svc.select(CollectiveOp::Gather, 999, 64),
        default_algorithm(CollectiveOp::Gather)
    );
}

#[test]
fn flipped_table_round_trips_byte_identically() {
    let svc = seeded();
    let prior_pick = svc.lookup(OP, P, BYTES).unwrap();
    let rival = rival_of(&svc, prior_pick);
    for _ in 0..40 {
        svc.observe(OP, P, BYTES, rival, 50.0);
        svc.observe(OP, P, BYTES, prior_pick, 5e9);
    }
    svc.publish();

    let dir = std::env::temp_dir().join(format!("exacoll-select-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("selection_flipped.json");
    let path_s = path.to_str().unwrap();

    svc.save(path_s).unwrap();
    let first = std::fs::read(&path).unwrap();
    let reloaded = SelectionService::load(path_s).unwrap();

    // The reload preserves the flip...
    assert_eq!(reloaded.lookup(OP, P, BYTES), Some(rival));
    // ...and re-saving reproduces the file byte for byte.
    let path2 = dir.join("selection_resaved.json");
    reloaded.save(path2.to_str().unwrap()).unwrap();
    assert_eq!(
        std::fs::read(&path2).unwrap(),
        first,
        "persisted bytes drifted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prior_vs_learned_diff_renders_deterministically() {
    let svc = seeded();
    let prior_pick = svc.lookup(OP, P, BYTES).unwrap();
    let rival = rival_of(&svc, prior_pick);
    // Before any contradiction, prior and learned agree: empty diff.
    assert!(svc.diff().is_empty());

    for _ in 0..40 {
        svc.observe(OP, P, BYTES, rival, 50.0);
        svc.observe(OP, P, BYTES, prior_pick, 5e9);
    }
    svc.publish();

    let rows = svc.diff();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].prior, prior_pick);
    assert_eq!(rows[0].learned, rival);
    assert_eq!(rows[0].samples, 80);

    let rendered = diff::render(&rows);
    // Deterministic: same service renders identically, and so does a
    // persist/reload copy.
    assert_eq!(rendered, diff::render(&svc.diff()));
    let text = svc.to_json().pretty();
    let reloaded = SelectionService::from_json(&exacoll::json::parse(&text).unwrap()).unwrap();
    assert_eq!(diff::render(&reloaded.diff()), rendered);
    assert!(rendered.contains("allreduce"), "diff: {rendered}");
}

#[test]
fn lookups_stay_consistent_while_the_writer_republishes() {
    let svc = seeded();
    let candidates: Vec<Algorithm> = {
        let mut all = Vec::new();
        svc.for_each_bucket(|op, p, bucket, cells| {
            if op == OP && p == P && bucket == bucket_of_bytes(BYTES) {
                all = cells.iter().map(|c| c.alg).collect();
            }
        });
        all
    };
    assert!(candidates.len() >= 2);

    std::thread::scope(|scope| {
        // Readers hammer the hot path across several worlds while the
        // writer ingests and republishes continuously. Every answer must
        // be either a miss (unseeded key) or a real candidate.
        for _ in 0..4 {
            scope.spawn(|| {
                for i in 0..200_000usize {
                    if let Some(alg) = svc.lookup(OP, P, BYTES) {
                        assert!(candidates.contains(&alg), "published non-candidate {alg}");
                    }
                    // Unseeded keys must miss cheaply, never crash.
                    assert_eq!(svc.lookup(OP, P + 1 + (i % 7), BYTES), None);
                }
            });
        }
        scope.spawn(|| {
            for round in 0..400usize {
                let alg = candidates[round % candidates.len()];
                svc.observe(OP, P, BYTES, alg, 1000.0 + round as f64);
                svc.publish();
            }
        });
    });
    // The writer's final publish is visible after the scope joins.
    assert!(svc.lookup(OP, P, BYTES).is_some());
}
