//! # exacoll — Generalized Collective Algorithms for the Exascale Era
//!
//! A from-scratch Rust reproduction of Wilkins et al., *"Generalized
//! Collective Algorithms for the Exascale Era"* (IEEE CLUSTER 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`comm`] — MPI-like point-to-point layer (threaded real-data runtime +
//!   trace recorder).
//! * [`sim`] — discrete-event simulator of exascale machines (multi-port
//!   NICs, intranode fabric, dragonfly topology).
//! * [`collectives`] — the paper's contribution: k-nomial, recursive
//!   multiplying, and k-ring generalized kernels plus classical baselines.
//! * [`models`] — the paper's analytical α-β-γ cost models (Eqs. 1–14).
//! * [`tuning`] — algorithm/radix selection configuration and autotuner.
//! * [`osu`] — OSU-style microbenchmark harness and vendor baseline policy.
//! * [`chaos`] — fault-injection campaign runner exercising the runtime's
//!   hang-free guarantee (drop/delay/duplicate/corrupt/kill).
//! * [`obs`] — observability: timed event timelines on both backends,
//!   metrics registry, Chrome-trace export, critical-path extraction, and
//!   model-vs-measured residual analysis.
//! * [`net`] — the distributed TCP backend: multi-process `SocketComm`
//!   runtime with a length-prefixed wire protocol, rendezvous bootstrap,
//!   and a per-peer progress engine.
//! * [`replay`] — deterministic record/replay: self-contained artifacts of
//!   per-rank event logs, a schedule-IR dataflow evaluator, and step-level
//!   divergence detection.
//! * [`select`] — the online algorithm-selection service: lock-free
//!   snapshot lookups seeded by cost-model priors and refined by observed
//!   timings, with persistent learned tables.
//! * [`json`] — the dependency-free JSON layer the snapshots and exporters
//!   serialize through.
//!
//! ## Quickstart
//!
//! ```
//! use exacoll::collectives::{Algorithm, CollectiveOp};
//! use exacoll::osu::run_collective_timed;
//! use exacoll::sim::Machine;
//!
//! // Time a k-nomial (radix 8) broadcast of 1 KiB across a simulated
//! // 128-node Frontier partition, one rank per node.
//! let machine = Machine::frontier(128, 1);
//! let t = run_collective_timed(
//!     &machine,
//!     CollectiveOp::Bcast,
//!     Algorithm::KnomialTree { k: 8 },
//!     1024,
//!     0,
//! )
//! .unwrap();
//! assert!(t.as_micros() > 0.0);
//! ```

pub use exacoll_chaos as chaos;
pub use exacoll_comm as comm;
pub use exacoll_core as collectives;
pub use exacoll_json as json;
pub use exacoll_models as models;
pub use exacoll_net as net;
pub use exacoll_obs as obs;
pub use exacoll_osu as osu;
pub use exacoll_replay as replay;
pub use exacoll_select as select;
pub use exacoll_sim as sim;
pub use exacoll_tuning as tuning;
