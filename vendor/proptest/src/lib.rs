//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range/tuple/`Just`
//! strategies, `prop_map` / `prop_flat_map` / `prop_filter_map`,
//! `collection::vec`, and panic-based `prop_assert!`s.
//!
//! Differences from the real crate: sampling is plain seeded Monte-Carlo
//! (no shrinking, no persisted failure seeds) and `prop_assert!` panics
//! rather than returning a `TestCaseError`. Every test remains fully
//! deterministic because the generator seed is fixed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration: how many random cases each property executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Create the deterministic generator for one property run.
pub fn test_rng() -> TestRng {
    StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15)
}

/// A value generator. Combinators erase to [`Mapped`] for simplicity.
pub trait Strategy: Sized + 'static {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: 'static, F>(self, f: F) -> Mapped<U>
    where
        F: Fn(Self::Value) -> U + 'static,
    {
        Mapped(Box::new(move |rng| f(self.sample(rng))))
    }

    /// Generate a value, then sample the strategy it induces.
    fn prop_flat_map<S: Strategy, F>(self, f: F) -> Mapped<S::Value>
    where
        F: Fn(Self::Value) -> S + 'static,
    {
        Mapped(Box::new(move |rng| f(self.sample(rng)).sample(rng)))
    }

    /// Keep only samples the closure maps to `Some`.
    fn prop_filter_map<U: 'static, F>(self, whence: &'static str, f: F) -> Mapped<U>
    where
        F: Fn(Self::Value) -> Option<U> + 'static,
    {
        Mapped(Box::new(move |rng| {
            for _ in 0..10_000 {
                if let Some(v) = f(self.sample(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map rejected 10000 consecutive samples: {whence}")
        }))
    }
}

/// A boxed, type-erased strategy (the result of every combinator).
pub struct Mapped<U>(Box<dyn Fn(&mut TestRng) -> U>);

impl<U: 'static> Strategy for Mapped<U> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.0)(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Mapped, Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements are drawn
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> Mapped<Vec<S::Value>> {
        Mapped(Box::new(move |rng: &mut TestRng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| elem.sample(rng)).collect()
        }))
    }
}

/// Panic-based stand-in for proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Panic-based stand-in for proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The property-test entry macro: wraps each `fn name(pat in strategy, ..)`
/// in a sampling loop over a deterministic generator.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng();
            for __case in 0..__cfg.cases {
                let ($($arg,)*) =
                    ($($crate::Strategy::sample(&$strat, &mut __rng),)*);
                $body
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, Mapped, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose((a, b) in (0usize..5, 0usize..5).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(b >= a);
        }
    }

    proptest! {
        #[test]
        fn flat_map_and_vec(v in (1usize..6).prop_flat_map(|n| collection::vec(0usize..10, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }
    }

    #[test]
    fn filter_map_retries() {
        let strat = (0usize..10).prop_filter_map("even only", |x| (x % 2 == 0).then_some(x));
        let mut rng = crate::test_rng();
        for _ in 0..100 {
            assert_eq!(crate::Strategy::sample(&strat, &mut rng) % 2, 0);
        }
    }
}
