//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the small API subset the workspace actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), `gen_range` over integer and
//! float ranges, and `gen_bool`. The generator is SplitMix64 — not the real
//! `StdRng` stream, but every consumer in this workspace only relies on
//! *determinism*, never on a specific stream.

use std::ops::Range;

/// Construct a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// The raw entropy source behind the [`Rng`] convenience methods.
pub trait RngCore {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // 64-bit word of state, and any seed — including 0 — is fine.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..50).all(|_| a.gen_range(0u64..1 << 60) == b.gen_range(0u64..1 << 60));
        assert!(!same);
    }
}
