//! Quickstart: time generalized collectives on a simulated Frontier
//! partition and see radix tuning pay off.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exacoll::collectives::{Algorithm, CollectiveOp};
use exacoll::osu::{latency, Table};
use exacoll::sim::Machine;

fn main() {
    // 128 Frontier nodes, one MPI rank per node (the MPI+X model).
    let machine = Machine::frontier(128, 1);
    println!(
        "machine: {} ({} ranks, {} NIC ports/node)\n",
        machine.name,
        machine.ranks(),
        machine.ports_per_node
    );

    let mut t = Table::new(
        "8-byte MPI_Reduce: binomial vs k-nomial radix sweep",
        &["algorithm", "latency (us)", "speedup vs binomial"],
    );
    let base = latency(
        &machine,
        CollectiveOp::Reduce,
        Algorithm::KnomialTree { k: 2 },
        8,
    )
    .expect("simulation runs");
    for k in [2usize, 4, 16, 64, 128] {
        let alg = Algorithm::KnomialTree { k };
        let lat = latency(&machine, CollectiveOp::Reduce, alg, 8).expect("simulation runs");
        t.row(vec![
            alg.to_string(),
            format!("{:.2}", lat.as_micros()),
            format!("{:.2}x", base / lat),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "1 MB MPI_Allreduce: recursive doubling vs multiplying",
        &["algorithm", "latency (us)", "speedup vs k=2"],
    );
    let base = latency(
        &machine,
        CollectiveOp::Allreduce,
        Algorithm::RecursiveMultiplying { k: 2 },
        1 << 20,
    )
    .expect("simulation runs");
    for k in [2usize, 4, 8] {
        let alg = Algorithm::RecursiveMultiplying { k };
        let lat = latency(&machine, CollectiveOp::Allreduce, alg, 1 << 20).expect("runs");
        t.row(vec![
            alg.to_string(),
            format!("{:.1}", lat.as_micros()),
            format!("{:.2}x", base / lat),
        ]);
    }
    t.print();

    println!("The optimal k-nomial radix for tiny messages sits near p; the");
    println!("optimal recursive-multiplying radix sits at the NIC port count (4).");
}
