//! What radix tuning buys a whole application.
//!
//! §II-A: collectives consume 25–50% of production application runtime.
//! This example times three application-style communication mixes on a
//! simulated Frontier partition under (a) MPICH-style fixed defaults and
//! (b) the autotuned generalized-algorithm selection, and reports the
//! end-to-end iteration speedup.
//!
//! ```text
//! cargo run --release --example app_workload
//! ```

use exacoll::collectives::CollectiveOp;
use exacoll::osu::{Table, Workload};
use exacoll::sim::Machine;
use exacoll::tuning::{autotune, AutotuneOptions, Selector};

fn main() {
    let machine = Machine::frontier(32, 1);
    println!("autotuning {} ...", machine.name);
    let sel = Selector::new(
        autotune(
            &machine,
            &AutotuneOptions {
                ops: CollectiveOp::EVALUATED.to_vec(),
                sizes: (3..=22).step_by(2).map(|e| 1usize << e).collect(),
                max_k: 16,
            },
        )
        .expect("sweep prices every probed point"),
    )
    .expect("valid config");

    let mut t = Table::new(
        "Per-iteration communication time: fixed defaults vs tuned selection",
        &["workload", "defaults (us)", "tuned (us)", "speedup"],
    );
    for w in [
        Workload::cg_like(),
        Workload::training_like(),
        Workload::proxy_like(),
    ] {
        let default = w.time_defaults(&machine).expect("runs");
        let tuned = w
            .time_with(&machine, |op, n| sel.select(op, n))
            .expect("runs");
        t.row(vec![
            w.name.clone(),
            format!("{:.1}", default.as_micros()),
            format!("{:.1}", tuned.as_micros()),
            format!("{:.2}x", default / tuned),
        ]);
    }
    t.print();
    println!("With collectives at 25-50% of application runtime (SII-A), these");
    println!("communication speedups translate directly into application gains.");
}
