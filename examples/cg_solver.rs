//! A distributed conjugate-gradient solver built on the generalized
//! collectives, running with *real data* on the threaded runtime.
//!
//! This is the kind of workload the paper's introduction motivates: an
//! iterative solver whose every iteration performs `MPI_Allreduce` dot
//! products (here via recursive multiplying) — the collective the paper
//! reports as the most popular for exascale applications.
//!
//! Solves a 1-D Laplacian system `A x = b` distributed over 8 rank-threads
//! and checks convergence against the known solution.
//!
//! ```text
//! cargo run --release --example cg_solver
//! ```

use exacoll::collectives::allreduce::allreduce_recmult;
use exacoll::comm::{buffer, run_ranks, Comm, CommResult, DType, ReduceOp, ThreadComm};

const RANKS: usize = 8;
const LOCAL_N: usize = 64; // unknowns per rank
const RADIX: usize = 4; // recursive-multiplying radix

/// Global dot product via recursive-multiplying allreduce.
fn dot<C: Comm>(c: &mut C, a: &[f64], b: &[f64]) -> CommResult<f64> {
    let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let out = allreduce_recmult(c, RADIX, &local.to_le_bytes(), DType::F64, ReduceOp::Sum)?;
    Ok(buffer::bytes_f64(&out)[0])
}

/// Apply the 1-D Laplacian (tridiagonal [-1, 2, -1]) to the distributed
/// vector `x`, exchanging halo values with neighbor ranks.
fn apply_laplacian(c: &mut ThreadComm, x: &[f64]) -> CommResult<Vec<f64>> {
    let me = c.rank();
    let p = c.size();
    let n = x.len();
    // Halo exchange: send boundary entries to neighbors.
    let mut left_halo = 0.0;
    let mut right_halo = 0.0;
    if me > 0 {
        c.send(me - 1, 1, x[0].to_le_bytes().to_vec())?;
    }
    if me < p - 1 {
        c.send(me + 1, 2, x[n - 1].to_le_bytes().to_vec())?;
    }
    if me < p - 1 {
        right_halo = buffer::bytes_f64(&c.recv(me + 1, 1, 8)?)[0];
    }
    if me > 0 {
        left_halo = buffer::bytes_f64(&c.recv(me - 1, 2, 8)?)[0];
    }
    let mut y = vec![0.0; n];
    for i in 0..n {
        let l = if i == 0 { left_halo } else { x[i - 1] };
        let r = if i == n - 1 { right_halo } else { x[i + 1] };
        y[i] = 2.0 * x[i] - l - r;
    }
    Ok(y)
}

fn main() {
    let results = run_ranks(RANKS, |c| {
        // Right-hand side chosen so the exact solution is known to be
        // x*_i = sin(pi * (i+1) / (N+1)) scaled; we just use b = A * ones
        // so the solution is the all-ones vector.
        let ones = vec![1.0f64; LOCAL_N];
        let b = apply_laplacian(c, &ones)?;

        let mut x = vec![0.0f64; LOCAL_N];
        let mut r = b.clone();
        let mut pdir = r.clone();
        let mut rs_old = dot(c, &r, &r)?;
        let mut iters = 0usize;
        for _ in 0..2000 {
            iters += 1;
            let ap = apply_laplacian(c, &pdir)?;
            let alpha = rs_old / dot(c, &pdir, &ap)?;
            for i in 0..LOCAL_N {
                x[i] += alpha * pdir[i];
                r[i] -= alpha * ap[i];
            }
            let rs_new = dot(c, &r, &r)?;
            if rs_new.sqrt() < 1e-10 {
                rs_old = rs_new;
                break;
            }
            let beta = rs_new / rs_old;
            for i in 0..LOCAL_N {
                pdir[i] = r[i] + beta * pdir[i];
            }
            rs_old = rs_new;
        }
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        Ok((iters, rs_old.sqrt(), err))
    });

    let (iters, residual, err) = results[0];
    println!("conjugate gradient over {RANKS} ranks x {LOCAL_N} unknowns");
    println!("  iterations:      {iters}");
    println!("  final residual:  {residual:.3e}");
    println!("  max |x - x*|:    {err:.3e}");
    assert!(err < 1e-6, "CG failed to converge to the exact solution");
    println!("  converged to the exact solution using recmult({RADIX}) allreduce");
}
