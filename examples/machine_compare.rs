//! Frontier vs Polaris: how the same generalized algorithm behaves on two
//! different (pre-)exascale architectures — the paper's §VI-E comparison.
//!
//! The headline divergence: k-ring thrives on Frontier's two-tier fabric
//! (dedicated Infinity Fabric intranode links) but is flat on Polaris,
//! whose intranode MPI latency is close to the network's.
//!
//! ```text
//! cargo run --release --example machine_compare
//! ```

use exacoll::collectives::{Algorithm, CollectiveOp};
use exacoll::osu::{latency, Table};
use exacoll::sim::Machine;

fn kring_panel(machine: &Machine, ks: &[usize]) -> Table {
    let n = 16 << 20; // 16 MB broadcast
    let mut t = Table::new(
        format!("16 MB MPI_Bcast k-ring sweep on {}", machine.name),
        &["k", "latency (us)", "vs ring"],
    );
    let ring = latency(machine, CollectiveOp::Bcast, Algorithm::Ring, n).expect("runs");
    for &k in ks {
        let alg = if k == 1 {
            Algorithm::Ring
        } else {
            Algorithm::KRing { k }
        };
        if alg.supports(CollectiveOp::Bcast, machine.ranks()).is_err() {
            continue;
        }
        let lat = latency(machine, CollectiveOp::Bcast, alg, n).expect("runs");
        t.row(vec![
            k.to_string(),
            format!("{:.0}", lat.as_micros()),
            format!("{:.2}x", ring / lat),
        ]);
    }
    t
}

fn main() {
    // 32 nodes each, one rank per GPU: 8 PPN on Frontier, 4 on Polaris.
    let frontier = Machine::frontier(32, 8);
    let polaris = Machine::polaris(32, 4);

    kring_panel(&frontier, &[1, 2, 4, 8, 16]).print();
    kring_panel(&polaris, &[1, 2, 4, 8]).print();

    // Recursive multiplying carries over: optimal radix tracks the port
    // count on every system (4 ports on Frontier, 2 on Polaris, 8 on a
    // projected Aurora).
    for (m, label) in [
        (Machine::frontier(32, 1), "4 ports"),
        (Machine::polaris(32, 1), "2 ports"),
        (Machine::aurora(32, 1), "8 ports"),
    ] {
        let mut t = Table::new(
            format!(
                "64 KB MPI_Allreduce recursive multiplying on {} ({label})",
                m.name
            ),
            &["k", "latency (us)"],
        );
        for k in [2usize, 4, 8, 16] {
            let lat = latency(
                &m,
                CollectiveOp::Allreduce,
                Algorithm::RecursiveMultiplying { k },
                64 * 1024,
            )
            .expect("runs");
            t.row(vec![k.to_string(), format!("{:.1}", lat.as_micros())]);
        }
        t.print();
    }
}
