//! Autotune a simulated machine and emit the §VI-G selection configuration.
//!
//! "Just by changing one environment variable to point to our new
//! configuration, MPICH users can automatically and transparently leverage
//! the speedups we uncover in this work."
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use exacoll::collectives::CollectiveOp;
use exacoll::osu::{latency, Table};
use exacoll::sim::Machine;
use exacoll::tuning::{autotune, AutotuneOptions, Selector};

fn main() {
    let machine = Machine::frontier(32, 1);
    let opts = AutotuneOptions {
        ops: CollectiveOp::EVALUATED.to_vec(),
        sizes: (3..=20).step_by(2).map(|e| 1usize << e).collect(),
        max_k: 16,
    };
    println!(
        "autotuning {} over {} sizes ...",
        machine.name,
        opts.sizes.len()
    );
    let cfg = autotune(&machine, &opts).expect("sweep prices every probed point");

    let path = format!("/tmp/exacoll_selection_{}.json", machine.name);
    std::fs::write(&path, cfg.to_json()).expect("config written");
    println!("selection configuration written to {path}\n");

    let sel = Selector::new(cfg).expect("valid config");
    let mut t = Table::new(
        "What the tuned selection picks (and buys vs MPICH defaults)",
        &["collective", "size", "selected", "speedup vs default"],
    );
    for op in CollectiveOp::EVALUATED {
        for &n in &[8usize, 32 * 1024, 1 << 20] {
            let alg = sel.select(op, n);
            let tuned = latency(&machine, op, alg, n).expect("runs");
            let base = latency(&machine, op, alg.base(), n).expect("runs");
            t.row(vec![
                op.to_string(),
                exacoll::osu::sweep::fmt_size(n),
                alg.to_string(),
                format!("{:.2}x", base / tuned),
            ]);
        }
    }
    t.print();
}
